//! Sparse-assembly conformance suite: the sparsity-aware explicit family
//! (`expl sparse legacy/modern`, the boundary-restricted assembly of
//! arXiv 2509.21037) against the dense explicit GPU family it specialises.
//!
//! The sparse-RHS kernels skip only work that provably touches exact zeros, so the
//! contract is the strongest one available: with the assembly parameters pinned to
//! the configuration both families share (SYRK path over a dense forward factor),
//! the assembled local operators `F̃ᵢ`, the operator action `F·p`, the PCPG
//! solutions and the iteration counts must be **bit-for-bit** identical — not merely
//! close in norm — for heat transfer in 2D and 3D and linear elasticity in 2D.
//! CI runs this suite under both `FETI_THREADS=1` and `FETI_THREADS=4`.

mod common;

use common::problems;
use feti_core::dualop::gpu::ExplicitGpuOperator;
use feti_core::dualop::SubdomainBlock;
use feti_core::{
    DualOperator, DualOperatorApproach, ExplicitAssemblyParams, FactorStorage, Path, PcpgOptions,
    TotalFetiSolver,
};
use feti_decompose::DecomposedProblem;

/// The assembly configuration the sparse family always executes (its boundary
/// structure lives in the right-hand side, so only the forward solve changes);
/// pinning the dense family to the same configuration makes the comparison exact.
fn pinned_params() -> ExplicitAssemblyParams {
    ExplicitAssemblyParams {
        path: Path::Syrk,
        forward_factor_storage: FactorStorage::Dense,
        ..Default::default()
    }
}

/// Each sparse-family member with the dense explicit approach it must reproduce.
const PAIRS: [(DualOperatorApproach, DualOperatorApproach); 2] = [
    (DualOperatorApproach::ExplicitSparseGpuLegacy, DualOperatorApproach::ExplicitGpuLegacy),
    (DualOperatorApproach::ExplicitSparseGpuModern, DualOperatorApproach::ExplicitGpuModern),
];

fn assert_bits_eq(
    name: &str,
    pair: (DualOperatorApproach, DualOperatorApproach),
    what: &str,
    a: &[f64],
    b: &[f64],
) {
    assert_eq!(a.len(), b.len(), "{name} {pair:?}: {what} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} {pair:?}: {what}[{i}] differs between sparse and dense assembly ({x:e} vs {y:e})"
        );
    }
}

fn built_operator(
    approach: DualOperatorApproach,
    problem: &DecomposedProblem,
) -> ExplicitGpuOperator {
    let mut op = ExplicitGpuOperator::new(
        approach,
        SubdomainBlock::from_problem(problem),
        problem.num_lambdas,
        pinned_params(),
    )
    .unwrap();
    op.preprocess().unwrap();
    op
}

/// Every assembled local operator `F̃ᵢ` must be bit-for-bit identical between the
/// boundary-restricted and the dense assembly path.
#[test]
fn assembled_local_operators_are_bit_identical() {
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        for pair in PAIRS {
            let s = built_operator(pair.0, &problem);
            let d = built_operator(pair.1, &problem);
            for i in 0..problem.subdomains.len() {
                let fs = s.local_operator(i).expect("sparse F̃ᵢ assembled");
                let fd = d.local_operator(i).expect("dense F̃ᵢ assembled");
                assert_eq!(fs.nrows(), fd.nrows(), "{name} {pair:?}: F̃_{i} shape");
                assert_eq!(fs.ncols(), fd.ncols(), "{name} {pair:?}: F̃_{i} shape");
                for r in 0..fs.nrows() {
                    for c in 0..fs.ncols() {
                        assert_eq!(
                            fs.get(r, c).to_bits(),
                            fd.get(r, c).to_bits(),
                            "{name} {pair:?}: F̃_{i}[{r},{c}] differs ({:e} vs {:e})",
                            fs.get(r, c),
                            fd.get(r, c)
                        );
                    }
                }
            }
        }
    }
}

/// The operator action `F·p` must be bit-for-bit identical between the families.
#[test]
fn operator_action_is_bit_identical() {
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.43).sin() + 0.2).collect();
        for pair in PAIRS {
            let apply = |approach| {
                let mut op = built_operator(approach, &problem);
                let mut q = vec![0.0; nl];
                op.apply(&p, &mut q);
                q
            };
            let qs = apply(pair.0);
            let qd = apply(pair.1);
            assert_bits_eq(name, pair, "F·p", &qs, &qd);
        }
    }
}

/// The PCPG solution — multipliers, primal solution, residual and the iteration
/// count — must be bit-for-bit identical between the families.
#[test]
fn solutions_and_iteration_counts_are_bit_identical() {
    for (name, spec) in problems() {
        // One shared handle for the whole pair sweep: solver construction clones the
        // Arc, not the decomposed problem.
        let problem = std::sync::Arc::new(DecomposedProblem::build(&spec));
        for pair in PAIRS {
            let solve = |approach| {
                let mut solver = TotalFetiSolver::new(
                    std::sync::Arc::clone(&problem),
                    approach,
                    Some(pinned_params()),
                    PcpgOptions::default(),
                )
                .unwrap();
                solver.solve().unwrap()
            };
            let ss = solve(pair.0);
            let sd = solve(pair.1);
            assert_eq!(
                ss.iterations, sd.iterations,
                "{name} {pair:?}: iteration counts must match"
            );
            assert_bits_eq(name, pair, "lambda", &ss.lambda, &sd.lambda);
            assert_bits_eq(name, pair, "alpha", &ss.alpha, &sd.alpha);
            assert_bits_eq(name, pair, "global solution", &ss.global_solution, &sd.global_solution);
            assert_eq!(
                ss.final_residual.to_bits(),
                sd.final_residual.to_bits(),
                "{name} {pair:?}: final residual"
            );
        }
    }
}

/// The modelled GPU time of the sparse family never exceeds the dense family's on
/// the same problem: skipping provably-zero work can only remove modelled seconds.
#[test]
fn sparse_assembly_never_costs_more_gpu_seconds() {
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        for pair in PAIRS {
            let gpu_seconds = |approach| {
                let mut op = ExplicitGpuOperator::new(
                    approach,
                    SubdomainBlock::from_problem(&problem),
                    problem.num_lambdas,
                    pinned_params(),
                )
                .unwrap();
                op.preprocess().unwrap().gpu_seconds
            };
            let s = gpu_seconds(pair.0);
            let d = gpu_seconds(pair.1);
            assert!(
                s <= d + 1e-15,
                "{name} {pair:?}: sparse preprocessing modelled {s:.9}s exceeds dense {d:.9}s"
            );
        }
    }
}
