//! Cross-approach conformance suite: every dual-operator approach of Table III must
//! agree with the implicit CPU reference operator — on the raw operator action `F·p`,
//! and on the solution PCPG converges to — for heat transfer in 2D and 3D and linear
//! elasticity in 2D.  The suite also pins the planner's acceptance criterion: for the
//! Fig. 6 problem sizes the planned pick stays within 2x of the exhaustive modelled
//! optimum.

mod common;

use common::problems;
use feti_core::planner::Planner;
use feti_core::{
    build_dual_operator, DualOperatorApproach, ExplicitAssemblyParams, PcpgOptions, TotalFetiSolver,
};
use feti_decompose::{DecomposedProblem, DecompositionSpec};
use feti_gpu::GpuSpec;
use feti_mesh::{Dim, ElementOrder, Physics};
use feti_sparse::blas;

/// `F·p` of every approach must match the implicit CPU reference within 1e-9 relative
/// error.
#[test]
fn every_approach_applies_the_same_operator() {
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.37).sin() + 0.25).collect();
        let mut reference_op =
            build_dual_operator(DualOperatorApproach::ImplicitCholmod, &problem, None).unwrap();
        reference_op.preprocess().unwrap();
        let mut q_ref = vec![0.0; nl];
        reference_op.apply(&p, &mut q_ref);
        let ref_norm = blas::norm2(&q_ref);
        assert!(ref_norm > 0.0, "{name}: reference action must be nontrivial");
        for approach in DualOperatorApproach::all() {
            let mut op = build_dual_operator(approach, &problem, None).unwrap();
            op.preprocess().unwrap();
            let mut q = vec![0.0; nl];
            op.apply(&p, &mut q);
            let diff: Vec<f64> = q.iter().zip(&q_ref).map(|(a, b)| a - b).collect();
            let rel = blas::norm2(&diff) / ref_norm;
            assert!(rel < 1e-9, "{name} {approach:?}: relative F·p error {rel:e}");
        }
    }
}

/// PCPG must converge to the same primal solution through every approach.
#[test]
fn every_approach_converges_to_the_same_solution() {
    for (name, spec) in problems() {
        // One shared handle for the whole approach sweep: solver construction clones
        // the Arc, not the decomposed problem.
        let problem = std::sync::Arc::new(DecomposedProblem::build(&spec));
        let mut reference_solver = TotalFetiSolver::new(
            std::sync::Arc::clone(&problem),
            DualOperatorApproach::ImplicitCholmod,
            None,
            PcpgOptions::default(),
        )
        .unwrap();
        let reference = reference_solver.solve().unwrap();
        let ref_norm = blas::norm2(&reference.global_solution).max(f64::MIN_POSITIVE);
        for approach in DualOperatorApproach::all() {
            let mut solver = TotalFetiSolver::new(
                std::sync::Arc::clone(&problem),
                approach,
                None,
                PcpgOptions::default(),
            )
            .unwrap();
            let sol = solver.solve().unwrap();
            assert!(sol.final_residual < 1e-8, "{name} {approach:?} must converge");
            let diff: Vec<f64> = sol
                .global_solution
                .iter()
                .zip(&reference.global_solution)
                .map(|(a, b)| a - b)
                .collect();
            let rel = blas::norm2(&diff) / ref_norm;
            assert!(rel < 1e-6, "{name} {approach:?}: relative solution error {rel:e}");
            assert!(
                problem.interface_jump(&sol.subdomain_solutions) < 1e-6,
                "{name} {approach:?}: interface continuity"
            );
        }
    }
}

/// Acceptance criterion of the planner: for the Fig. 6 problem sizes, the planned
/// pick's modelled amortized total stays within 2x of the exhaustive modelled optimum
/// over every approach × Table-I parameter combination — both for the full-sweep plan
/// and for the pruned auto-configured plan.
#[test]
fn planner_pick_is_within_2x_of_the_exhaustive_modelled_optimum() {
    let fig6_specs: Vec<DecompositionSpec> = [3usize, 6]
        .iter()
        .map(|&nel| DecompositionSpec {
            dim: Dim::Two,
            physics: Physics::HeatTransfer,
            order: ElementOrder::Linear,
            subdomains_per_side: 2,
            elements_per_subdomain_side: nel,
            subdomains_per_cluster: 4,
        })
        .chain([2usize, 3].iter().map(|&nel| DecompositionSpec {
            dim: Dim::Three,
            physics: Physics::HeatTransfer,
            order: ElementOrder::Quadratic,
            subdomains_per_side: 2,
            elements_per_subdomain_side: nel,
            subdomains_per_cluster: 8,
        }))
        .collect();
    for spec in fig6_specs {
        let problem = DecomposedProblem::build(&spec);
        let planner = Planner::new(&problem, GpuSpec::a100_40gb());
        for iterations in [1usize, 10, 100, 1000, 10_000] {
            // Exhaustive modelled optimum: every approach × every Table-I combination.
            let mut optimum = f64::INFINITY;
            for approach in DualOperatorApproach::all() {
                for params in ExplicitAssemblyParams::all_combinations() {
                    let c = planner.estimate(approach, params);
                    if c.fits_device_memory {
                        optimum = optimum.min(c.total_seconds(iterations));
                    }
                }
            }
            for (label, plan) in
                [("full", planner.plan(iterations)), ("auto", planner.plan_auto(iterations))]
            {
                let pick = plan.best().total_seconds(iterations);
                assert!(
                    pick <= 2.0 * optimum,
                    "{:?} {} dofs, {iterations} iterations, {label} plan: pick {pick:e} vs \
                     optimum {optimum:e}",
                    spec.dim,
                    spec.dofs_per_subdomain()
                );
            }
        }
    }
}
