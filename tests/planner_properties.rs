//! Property tests of the cost-model planner: over randomly drawn mesh sizes,
//! dimensionalities and amortization horizons, every estimate must be finite and
//! positive for the full Table-I parameter space, and the planner's pick (full sweep
//! and pruned auto-configured alike) must stay within 2x of the exhaustively modelled
//! optimum.  The sparsity-aware explicit family adds two more invariants: its
//! estimate never exceeds its dense counterpart's (so the planner can never select a
//! sparse candidate costed above the dense one), and the modelled boundary-restricted
//! kernel costs are monotone in the boundary-DOF count.

use feti_core::planner::Planner;
use feti_core::{DualOperatorApproach, ExplicitAssemblyParams, FactorStorage, Path};
use feti_decompose::{DecomposedProblem, DecompositionSpec};
use feti_gpu::{cost, CudaGeneration, GpuSpec};
use feti_mesh::{Dim, ElementOrder, Physics};
use proptest::prelude::*;

fn spec_for(use_3d: bool, nel2: usize, nel3: usize, elasticity: bool) -> DecompositionSpec {
    if use_3d {
        DecompositionSpec {
            dim: Dim::Three,
            physics: Physics::HeatTransfer,
            order: ElementOrder::Quadratic,
            subdomains_per_side: 2,
            elements_per_subdomain_side: nel3,
            subdomains_per_cluster: 8,
        }
    } else {
        DecompositionSpec {
            dim: Dim::Two,
            physics: if elasticity { Physics::LinearElasticity } else { Physics::HeatTransfer },
            order: ElementOrder::Linear,
            subdomains_per_side: 2,
            elements_per_subdomain_side: nel2,
            subdomains_per_cluster: 4,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn estimates_are_finite_and_pick_is_near_optimal(
        nel2 in 2usize..9,
        nel3 in 2usize..4,
        use_3d in 0u8..2,
        elasticity in 0u8..2,
        iters_exp in 0u32..5,
    ) {
        let spec = spec_for(use_3d == 1, nel2, nel3, elasticity == 1);
        let problem = DecomposedProblem::build(&spec);
        let planner = Planner::new(&problem, GpuSpec::a100_40gb());
        let iterations = 10usize.pow(iters_exp);

        // Exhaustive modelled sweep: every approach x every Table-I combination.
        let mut optimum = f64::INFINITY;
        for approach in DualOperatorApproach::all() {
            for params in ExplicitAssemblyParams::all_combinations() {
                let c = planner.estimate(approach, params);
                prop_assert!(
                    c.preprocessing.total_seconds.is_finite()
                        && c.preprocessing.total_seconds > 0.0,
                    "{:?} preprocessing estimate must be finite and positive", approach
                );
                prop_assert!(
                    c.apply.total_seconds.is_finite() && c.apply.total_seconds > 0.0,
                    "{:?} apply estimate must be finite and positive", approach
                );
                prop_assert!(
                    c.total_seconds(iterations).is_finite(),
                    "{:?} amortized total must be finite", approach
                );
                if c.fits_device_memory {
                    optimum = optimum.min(c.total_seconds(iterations));
                }
            }
        }
        prop_assert!(optimum.is_finite());

        let full = planner.plan(iterations);
        let auto = planner.plan_auto(iterations);
        let full_pick = full.best().total_seconds(iterations);
        let auto_pick = auto.best().total_seconds(iterations);
        prop_assert!(
            full_pick <= 2.0 * optimum,
            "full-sweep pick {} vs modelled optimum {}", full_pick, optimum
        );
        prop_assert!(
            auto_pick <= 2.0 * optimum,
            "auto pick {} vs modelled optimum {}", auto_pick, optimum
        );
    }

    // The sparsity-aware family only removes provably-zero work from the dense
    // explicit assembly, so under the shared pinned configuration (SYRK path over a
    // dense forward factor — what the sparse family always executes) its estimated
    // cost never exceeds the dense counterpart's at any amortization horizon.  The
    // planner therefore can never select a sparse candidate costed above its dense
    // twin.
    #[test]
    fn sparse_family_estimate_never_exceeds_its_dense_counterpart(
        nel2 in 2usize..9,
        nel3 in 2usize..4,
        use_3d in 0u8..2,
        elasticity in 0u8..2,
        iters_exp in 0u32..5,
    ) {
        let spec = spec_for(use_3d == 1, nel2, nel3, elasticity == 1);
        let problem = DecomposedProblem::build(&spec);
        let planner = Planner::new(&problem, GpuSpec::a100_40gb());
        let iterations = 10usize.pow(iters_exp);
        let params = ExplicitAssemblyParams {
            path: Path::Syrk,
            forward_factor_storage: FactorStorage::Dense,
            ..Default::default()
        };
        for (sparse, dense) in [
            (DualOperatorApproach::ExplicitSparseGpuLegacy, DualOperatorApproach::ExplicitGpuLegacy),
            (DualOperatorApproach::ExplicitSparseGpuModern, DualOperatorApproach::ExplicitGpuModern),
        ] {
            let s = planner.estimate(sparse, params);
            let d = planner.estimate(dense, params);
            prop_assert!(
                s.total_seconds(iterations) <= d.total_seconds(iterations) * (1.0 + 1e-12),
                "{:?} estimate {} exceeds {:?} estimate {} at {} iterations",
                sparse, s.total_seconds(iterations), dense, d.total_seconds(iterations), iterations
            );
        }
    }

    // The modelled boundary-restricted kernel costs are monotone nondecreasing in the
    // boundary-DOF count: more boundary columns can only add modelled work.
    #[test]
    fn sparse_kernel_costs_are_monotone_in_boundary_count(
        n in 1usize..3000,
        nrhs in 1usize..800,
        gen_sel in 0usize..2,
        b1 in 0usize..3001,
        b2 in 0usize..3001,
    ) {
        let spec = GpuSpec::a100_40gb();
        let generation = [CudaGeneration::Legacy, CudaGeneration::Modern][gen_sel];
        let (lo, hi) = {
            let a = b1.min(n);
            let b = b2.min(n);
            (a.min(b), a.max(b))
        };
        let trsm_lo = cost::sparse_rhs_trsm(&spec, generation, n, nrhs, lo).seconds;
        let trsm_hi = cost::sparse_rhs_trsm(&spec, generation, n, nrhs, hi).seconds;
        prop_assert!(
            trsm_lo <= trsm_hi * (1.0 + 1e-12),
            "sparse_rhs_trsm n={} nrhs={} {:?}: cost({})={} > cost({})={}",
            n, nrhs, generation, lo, trsm_lo, hi, trsm_hi
        );
        let syrk_lo = cost::boundary_syrk(&spec, generation, nrhs, n, lo).seconds;
        let syrk_hi = cost::boundary_syrk(&spec, generation, nrhs, n, hi).seconds;
        prop_assert!(
            syrk_lo <= syrk_hi * (1.0 + 1e-12),
            "boundary_syrk nl={} k={} {:?}: cost({})={} > cost({})={}",
            nrhs, n, generation, lo, syrk_lo, hi, syrk_hi
        );
    }
}
