//! End-to-end integration tests spanning every crate: mesh generation → assembly →
//! decomposition → sparse solvers → (simulated) GPU kernels → dual operators → PCPG,
//! verified against an independently computed global FEM solution.

use feti_core::{DualOperatorApproach, PcpgOptions, TotalFetiSolver};
use feti_decompose::{DecomposedProblem, DecompositionSpec};
use feti_mesh::{
    assemble_subdomain, generate::generate, Dim, ElementOrder, Physics, SubdomainSpec,
};
use feti_solver::{CholeskyFactor, SolverOptions};
use feti_sparse::{blas, ops, Transpose};

/// Solves the same physical problem on a single global mesh, applying the Dirichlet
/// condition by penalty, and returns (global lattice -> value) pairs for comparison.
fn reference_solution(spec: &DecompositionSpec) -> std::collections::HashMap<[i64; 3], f64> {
    assert_eq!(spec.physics, Physics::HeatTransfer, "reference is scalar-only");
    let total_elements = spec.subdomains_per_side * spec.elements_per_subdomain_side;
    let mesh = generate(&SubdomainSpec {
        dim: spec.dim,
        order: spec.order,
        elements_per_side: total_elements,
        origin_elements: [0, 0, 0],
        cell_size: 1.0 / total_elements as f64,
    });
    let assembled = assemble_subdomain(&mesh, spec.physics);
    let mut k = assembled.stiffness.clone();
    let mut f = assembled.load.clone();
    // Dirichlet on the x = 0 face by penalty.
    let penalty = 1e10;
    let dirichlet = mesh.nodes_on_lattice_plane(0, 0);
    {
        let row_ptr = k.row_ptr().to_vec();
        let col_idx = k.col_idx().to_vec();
        let values = k.values_mut();
        for &node in &dirichlet {
            for p in row_ptr[node]..row_ptr[node + 1] {
                if col_idx[p] == node {
                    values[p] += penalty;
                }
            }
            f[node] = 0.0;
        }
    }
    let factor = CholeskyFactor::new(&k, &SolverOptions::default()).unwrap();
    let u = factor.solve(&f);
    mesh.lattice.iter().enumerate().map(|(i, &lat)| (lat, u[i])).collect()
}

fn feti_solution(
    spec: &DecompositionSpec,
    approach: DualOperatorApproach,
) -> (std::sync::Arc<DecomposedProblem>, Vec<Vec<f64>>) {
    // Hand the solver a clone of the shared handle, not a deep copy of the problem.
    let problem = std::sync::Arc::new(DecomposedProblem::build(spec));
    let mut solver = TotalFetiSolver::new(
        std::sync::Arc::clone(&problem),
        approach,
        None,
        PcpgOptions { max_iterations: 2000, tolerance: 1e-10, use_preconditioner: true },
    )
    .unwrap();
    let solution = solver.solve().unwrap();
    (problem, solution.subdomain_solutions)
}

#[test]
fn feti_matches_global_fem_solution_for_every_approach() {
    let spec = DecompositionSpec {
        dim: Dim::Two,
        physics: Physics::HeatTransfer,
        order: ElementOrder::Linear,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 4,
        subdomains_per_cluster: 4,
    };
    let reference = reference_solution(&spec);
    for approach in DualOperatorApproach::all() {
        let (problem, per_subdomain) = feti_solution(&spec, approach);
        let mut max_err = 0.0f64;
        let mut max_ref = 0.0f64;
        for sd in &problem.subdomains {
            for (node, lat) in sd.mesh.lattice.iter().enumerate() {
                let r = reference[lat];
                max_ref = max_ref.max(r.abs());
                max_err = max_err.max((per_subdomain[sd.index][node] - r).abs());
            }
        }
        assert!(
            max_err < 1e-4 * max_ref.max(1e-3),
            "{approach:?}: FETI deviates from the global FEM solution by {max_err}"
        );
    }
}

#[test]
fn feti_matches_global_fem_solution_in_3d() {
    let spec = DecompositionSpec {
        dim: Dim::Three,
        physics: Physics::HeatTransfer,
        order: ElementOrder::Linear,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 2,
        subdomains_per_cluster: 8,
    };
    let reference = reference_solution(&spec);
    let (problem, per_subdomain) = feti_solution(&spec, DualOperatorApproach::ExplicitGpuLegacy);
    for sd in &problem.subdomains {
        for (node, lat) in sd.mesh.lattice.iter().enumerate() {
            let r = reference[lat];
            assert!(
                (per_subdomain[sd.index][node] - r).abs() < 1e-5,
                "node {lat:?}: {} vs {}",
                per_subdomain[sd.index][node],
                r
            );
        }
    }
}

#[test]
fn dual_operator_is_symmetric_positive_semidefinite() {
    // F = B K+ B^T must be symmetric PSD on the dual space: check with random probes.
    let spec = DecompositionSpec::small_heat_2d();
    let problem = DecomposedProblem::build(&spec);
    let mut op =
        feti_core::build_dual_operator(DualOperatorApproach::ExplicitGpuModern, &problem, None)
            .unwrap();
    op.preprocess().unwrap();
    let nl = problem.num_lambdas;
    let probes: Vec<Vec<f64>> = (0..4)
        .map(|s| (0..nl).map(|i| (((i * 31 + s * 17) % 13) as f64) - 6.0).collect())
        .collect();
    let mut images = Vec::new();
    for p in &probes {
        let mut q = vec![0.0; nl];
        op.apply(p, &mut q);
        assert!(blas::dot(p, &q) >= -1e-9, "F must be positive semidefinite");
        images.push(q);
    }
    // Symmetry: p_i^T F p_j == p_j^T F p_i.
    for i in 0..probes.len() {
        for j in 0..probes.len() {
            let a = blas::dot(&probes[i], &images[j]);
            let b = blas::dot(&probes[j], &images[i]);
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "F must be symmetric");
        }
    }
}

#[test]
fn constraint_residual_vanishes_at_the_solution() {
    // B u = c must hold at the converged solution (gluing rows equal across
    // subdomains, Dirichlet rows equal to the prescribed value).
    let spec = DecompositionSpec {
        dim: Dim::Two,
        physics: Physics::LinearElasticity,
        order: ElementOrder::Linear,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 3,
        subdomains_per_cluster: 4,
    };
    let problem = DecomposedProblem::build(&spec);
    let mut solver = TotalFetiSolver::new(
        &problem,
        DualOperatorApproach::ExplicitMkl,
        None,
        PcpgOptions { max_iterations: 3000, tolerance: 1e-11, use_preconditioner: true },
    )
    .unwrap();
    let solution = solver.solve().unwrap();
    let mut bu = vec![0.0; problem.num_lambdas];
    for sd in &problem.subdomains {
        let mut local = vec![0.0; sd.gluing.nrows()];
        ops::spmv_csr(
            1.0,
            &sd.gluing,
            Transpose::No,
            &solution.subdomain_solutions[sd.index],
            0.0,
            &mut local,
        );
        for (l, &g) in sd.lambda_map.iter().enumerate() {
            bu[g] += local[l];
        }
    }
    for (lhs, rhs) in bu.iter().zip(&problem.constraint_rhs) {
        assert!((lhs - rhs).abs() < 1e-6, "constraint violated: {lhs} vs {rhs}");
    }
}
