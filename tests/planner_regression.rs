//! Regression pin for the heat-3D 125-dof mispick (PR 5's recorded `plan_vs_exhaustive`
//! violation): the planner used to price the host SYMV of the explicit CPU approaches
//! at streaming bandwidth even when the dense `F̃ᵢ` is cache resident, overpricing the
//! host apply ~6× for tiny subdomains and picking the device-apply `expl legacy`
//! instead — whose measured total at 1000 iterations was >3× the measured optimum.
//!
//! The fix is the two-level cache-aware dense roofline in `HostSpec::dense_seconds`.
//! This test pins the exact failing configuration: heat transfer, 3D, quadratic
//! elements, 2 elements per subdomain side (125 DOFs per subdomain), 1000 expected
//! iterations.

use feti_bench::{build_problem, measure_approach, Measurement};
use feti_core::planner::Planner;
use feti_core::{DualOperatorApproach, ExplicitAssemblyParams};
use feti_gpu::GpuSpec;
use feti_mesh::{Dim, ElementOrder, Physics};

const ITERATIONS: usize = 1000;

fn measure_robust(
    problem: &feti_decompose::DecomposedProblem,
    approach: DualOperatorApproach,
    params: Option<ExplicitAssemblyParams>,
) -> Measurement {
    let mut best = measure_approach(problem, approach, params);
    for _ in 0..2 {
        let m = measure_approach(problem, approach, params);
        if m.preprocessing.total_seconds < best.preprocessing.total_seconds {
            best.preprocessing = m.preprocessing;
        }
        if m.apply.total_seconds < best.apply.total_seconds {
            best.apply = m.apply;
        }
    }
    best
}

/// Model-level pin (deterministic, thread-count independent in its conclusion): at
/// 125 DOFs per subdomain the dense `F̃ᵢ` is 86×86 ≈ 59 KB — cache resident — so the
/// estimated host-apply cost of the explicit CPU approaches must undercut the
/// device-apply explicit family, and the amortized 1000-iteration pick must be a
/// host-apply explicit approach.
#[test]
fn heat_3d_125dof_1000iter_plans_a_host_apply_explicit_approach() {
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 2);
    assert_eq!(problem.spec.dofs_per_subdomain(), 125, "this pin is about the 125-dof case");
    let planner = Planner::new(&problem, GpuSpec::a100_40gb());
    let plan = planner.plan(ITERATIONS);
    let pick = plan.best();
    assert!(
        matches!(
            pick.approach,
            DualOperatorApproach::ExplicitMkl | DualOperatorApproach::ExplicitCholmod
        ),
        "the 125-dof/1000-iter pick regressed to {:?} — the cache-aware dense roofline \
         must keep the host apply cheaper than shuttling 371-λ vectors through the device",
        pick.approach
    );
    // The inversion that caused the bug, pinned directly: the host-apply estimate of
    // the explicit CPU family must be below the device-apply estimate of the
    // explicit GPU family at this size.
    let host =
        planner.estimate(DualOperatorApproach::ExplicitCholmod, ExplicitAssemblyParams::default());
    let device = planner
        .estimate(DualOperatorApproach::ExplicitGpuLegacy, ExplicitAssemblyParams::default());
    assert!(
        host.apply.total_seconds < device.apply.total_seconds,
        "host apply estimated {} s vs device {} s — tiny dense applies must be cheap",
        host.apply.total_seconds,
        device.apply.total_seconds
    );
}

/// End-to-end pin of the acceptance gate on the exact failing row: the planned
/// pick's measured total at 1000 iterations stays within 2× of the measured optimum
/// over all eleven approaches.
#[test]
fn heat_3d_125dof_1000iter_pick_is_within_2x_of_the_measured_optimum() {
    // Wall-clock gates only mean something in an optimized build (host kernels are
    // measured, device kernels are modelled — an unoptimized host loses by the
    // build profile, not the model) and when the worker pool is not oversubscribed:
    // with FETI_THREADS above the machine's parallelism every host-parallel apply
    // pays scheduler churn the cost model cannot (and should not) predict.  CI runs
    // this suite at FETI_THREADS=4 on small runners; the measured gate also runs at
    // the calibrated default via `plan_vs_exhaustive` (always built --release).
    if cfg!(debug_assertions) {
        eprintln!("skipping measured gate: unoptimized build");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if feti_core::host_threads() > cores {
        eprintln!("skipping measured gate: {} threads on {cores} cores", feti_core::host_threads());
        return;
    }
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 2);
    let planner = Planner::new(&problem, GpuSpec::a100_40gb());
    let pick = *planner.plan(ITERATIONS).best();
    let pick_measured = measure_robust(&problem, pick.approach, Some(pick.params));
    let best_ms = DualOperatorApproach::all()
        .into_iter()
        .map(|a| measure_robust(&problem, a, None).total_ms_per_subdomain(ITERATIONS))
        .fold(f64::INFINITY, f64::min);
    let pick_ms = pick_measured.total_ms_per_subdomain(ITERATIONS);
    assert!(
        pick_ms <= 2.0 * best_ms,
        "planned {:?} measured {pick_ms:.3} ms/sd vs optimum {best_ms:.3} ms/sd — \
         the heat-3D 125-dof/1000-iter row exceeds the 2x gate again",
        pick.approach
    );
}
