//! Service cache conformance: a cached (warm) solver must produce **bit-for-bit**
//! the same solution as a cold one, for every one of the eleven dual-operator
//! approaches.  The cache only skips preprocessing — factors and assembled
//! operators are reused, not recomputed — so every float of the PCPG trajectory
//! must be identical between the cold first job and the warm repeat.

mod common;

use std::sync::Arc;

use feti_core::DualOperatorApproach;
use feti_decompose::DecomposedProblem;
use feti_service::{CacheOutcome, FetiService, JobSpec, ServiceConfig};

/// Runs the same job twice through one service and checks the repeat is a cache hit
/// with a bitwise-identical solution.
fn assert_cached_solve_is_bitwise_identical(
    service: &FetiService,
    problem: &Arc<DecomposedProblem>,
    approach: DualOperatorApproach,
) {
    let job = || {
        JobSpec::new(format!("conformance-{approach:?}"), Arc::clone(problem))
            .with_approach(approach)
    };
    let cold = service.submit(job()).unwrap().wait().unwrap();
    let warm = service.submit(job()).unwrap().wait().unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss, "{approach:?}: first job must build cold");
    assert_eq!(warm.cache, CacheOutcome::Hit, "{approach:?}: repeat must hit the cache");
    assert_eq!(cold.key, warm.key);
    assert_eq!(cold.solutions.len(), warm.solutions.len());
    for (a, b) in cold.solutions.iter().zip(&warm.solutions) {
        assert_eq!(
            a.iterations, b.iterations,
            "{approach:?}: cached solve must take the identical PCPG trajectory"
        );
        assert_eq!(a.lambda, b.lambda, "{approach:?}: λ must be bit-for-bit identical");
        assert_eq!(a.alpha, b.alpha, "{approach:?}: α must be bit-for-bit identical");
        assert_eq!(
            a.global_solution, b.global_solution,
            "{approach:?}: the primal solution must be bit-for-bit identical"
        );
    }
}

#[test]
fn cached_solves_are_bitwise_identical_across_all_approaches_heat_2d() {
    let service = FetiService::start(ServiceConfig {
        workers: 1,
        cache_capacity: 2 * DualOperatorApproach::all().len(),
        ..ServiceConfig::default()
    });
    let problem = Arc::new(DecomposedProblem::build(&common::heat_2d()));
    for approach in DualOperatorApproach::all() {
        assert_cached_solve_is_bitwise_identical(&service, &problem, approach);
    }
    let stats = service.shutdown().unwrap();
    let n = DualOperatorApproach::all().len();
    assert_eq!(stats.jobs_completed, 2 * n);
    assert_eq!(stats.cache_hits, n);
    assert_eq!(stats.cache_misses, n);
}

#[test]
fn cached_solves_are_bitwise_identical_across_all_approaches_heat_3d() {
    let service = FetiService::start(ServiceConfig {
        workers: 1,
        cache_capacity: 2 * DualOperatorApproach::all().len(),
        ..ServiceConfig::default()
    });
    let problem = Arc::new(DecomposedProblem::build(&common::heat_3d()));
    for approach in DualOperatorApproach::all() {
        assert_cached_solve_is_bitwise_identical(&service, &problem, approach);
    }
    service.shutdown().unwrap();
}

#[test]
fn cache_eviction_falls_back_to_a_cold_build_with_the_same_solution() {
    // Capacity 1: the second geometry evicts the first, so the first geometry's
    // third job must rebuild cold — and still match its own cold solution exactly.
    let service = FetiService::start(ServiceConfig {
        workers: 1,
        cache_capacity: 1,
        ..ServiceConfig::default()
    });
    let p1 = Arc::new(DecomposedProblem::build(&common::heat_2d()));
    let p2 = Arc::new(DecomposedProblem::build(&common::elasticity_2d()));
    let approach = DualOperatorApproach::ExplicitGpuLegacy;
    let job =
        |p: &Arc<DecomposedProblem>| JobSpec::new("evict", Arc::clone(p)).with_approach(approach);
    let first = service.submit(job(&p1)).unwrap().wait().unwrap();
    assert_eq!(first.cache, CacheOutcome::Miss);
    let other = service.submit(job(&p2)).unwrap().wait().unwrap();
    assert_eq!(other.cache, CacheOutcome::Miss);
    let evicted_rerun = service.submit(job(&p1)).unwrap().wait().unwrap();
    assert_eq!(
        evicted_rerun.cache,
        CacheOutcome::Miss,
        "p1's warm solver must have been evicted by p2"
    );
    assert_eq!(first.solutions[0].global_solution, evicted_rerun.solutions[0].global_solution);
    let stats = service.shutdown().unwrap();
    assert!(stats.cache_evictions >= 1, "capacity-1 cache must have evicted");
}

#[test]
fn distinct_geometries_never_share_cache_entries() {
    // Same spec built twice gives an equal structure (and may share warm solvers);
    // a different spec must never collide.
    let service = FetiService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let approach = DualOperatorApproach::ImplicitCholmod;
    let a1 = Arc::new(DecomposedProblem::build(&common::heat_2d()));
    let a2 = Arc::new(DecomposedProblem::build(&common::heat_2d()));
    let b = Arc::new(DecomposedProblem::build(&common::heat_3d()));
    let r1 = service.submit(JobSpec::new("t", a1).with_approach(approach)).unwrap().wait().unwrap();
    let r2 = service.submit(JobSpec::new("t", a2).with_approach(approach)).unwrap().wait().unwrap();
    let rb = service.submit(JobSpec::new("t", b).with_approach(approach)).unwrap().wait().unwrap();
    assert_eq!(r1.key, r2.key, "identical decompositions must share the cache key");
    assert_eq!(r2.cache, CacheOutcome::Hit, "rebuilt-but-identical geometry is a hit");
    assert_ne!(r1.key, rb.key, "different geometry must have a different key");
    assert_eq!(rb.cache, CacheOutcome::Miss);
    service.shutdown().unwrap();
}
