//! Integration tests of the paper's qualitative timing claims under the simulated
//! device model: explicit application is faster than implicit, the GPU explicit
//! approach amortizes after a finite number of iterations for 3D problems, and the
//! modern sparse triangular solve is the slow path the paper reports.

use feti_bench::{build_problem, measure_approach};
use feti_core::{DualOperatorApproach, ExplicitAssemblyParams, FactorStorage, Path, ScatterGather};
use feti_gpu::CudaGeneration;
use feti_mesh::{Dim, ElementOrder, Physics};
use feti_sparse::MemoryOrder;

#[test]
fn explicit_gpu_application_is_faster_than_implicit_cpu_application() {
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 3);
    let implicit = measure_approach(&problem, DualOperatorApproach::ImplicitMkl, None);
    let explicit = measure_approach(&problem, DualOperatorApproach::ExplicitGpuLegacy, None);
    assert!(
        explicit.apply.total_seconds < implicit.apply.total_seconds,
        "explicit GPU apply ({:.3e}s) must beat implicit CPU apply ({:.3e}s)",
        explicit.apply.total_seconds,
        implicit.apply.total_seconds
    );
    // ... and its preprocessing carries the additional device-side assembly work that
    // creates the amortization point (the implicit approach submits no device kernels
    // during preprocessing).
    assert!(explicit.preprocessing.gpu_seconds > implicit.preprocessing.gpu_seconds);
    assert!(explicit.preprocessing.gpu_seconds > 0.0);
}

#[test]
fn amortization_point_is_finite_for_3d_problems() {
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 3);
    let implicit = measure_approach(&problem, DualOperatorApproach::ImplicitMkl, None);
    let explicit = measure_approach(&problem, DualOperatorApproach::ExplicitGpuLegacy, None);
    let amortization = (1..100_000)
        .find(|&it| explicit.total_ms_per_subdomain(it) < implicit.total_ms_per_subdomain(it));
    assert!(
        amortization.is_some(),
        "the explicit GPU approach must eventually amortize its preprocessing"
    );
}

#[test]
fn syrk_path_is_not_slower_than_trsm_path() {
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 3);
    let base = ExplicitAssemblyParams::auto_configure(
        CudaGeneration::Legacy,
        Dim::Three,
        problem.spec.dofs_per_subdomain(),
    );
    let syrk = measure_approach(
        &problem,
        DualOperatorApproach::ExplicitGpuLegacy,
        Some(ExplicitAssemblyParams { path: Path::Syrk, ..base }),
    );
    let trsm = measure_approach(
        &problem,
        DualOperatorApproach::ExplicitGpuLegacy,
        Some(ExplicitAssemblyParams { path: Path::Trsm, ..base }),
    );
    assert!(
        syrk.preprocessing.gpu_seconds <= trsm.preprocessing.gpu_seconds * 1.05,
        "SYRK path ({:.3e}s GPU) should not lose to the TRSM path ({:.3e}s GPU)",
        syrk.preprocessing.gpu_seconds,
        trsm.preprocessing.gpu_seconds
    );
}

#[test]
fn modern_sparse_trsm_is_slower_than_dense_trsm() {
    // The paper's key observation about the modern cuSPARSE generic API.
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 3);
    let make = |storage| ExplicitAssemblyParams {
        path: Path::Syrk,
        forward_factor_storage: storage,
        backward_factor_storage: storage,
        forward_factor_order: MemoryOrder::RowMajor,
        backward_factor_order: MemoryOrder::RowMajor,
        rhs_order: MemoryOrder::RowMajor,
        scatter_gather: ScatterGather::Gpu,
    };
    let sparse = measure_approach(
        &problem,
        DualOperatorApproach::ExplicitGpuModern,
        Some(make(FactorStorage::Sparse)),
    );
    let dense = measure_approach(
        &problem,
        DualOperatorApproach::ExplicitGpuModern,
        Some(make(FactorStorage::Dense)),
    );
    assert!(
        dense.preprocessing.gpu_seconds < sparse.preprocessing.gpu_seconds,
        "with modern CUDA, dense factor storage must win (dense {:.3e}s vs sparse {:.3e}s)",
        dense.preprocessing.gpu_seconds,
        sparse.preprocessing.gpu_seconds
    );
}

#[test]
fn hybrid_matches_the_paper_role_of_fast_apply_but_cpu_assembly() {
    let problem = build_problem(Dim::Three, Physics::HeatTransfer, ElementOrder::Quadratic, 3);
    let hybrid = measure_approach(&problem, DualOperatorApproach::ExplicitHybrid, None);
    let expl_mkl = measure_approach(&problem, DualOperatorApproach::ExplicitMkl, None);
    // The hybrid approach applies on the GPU, so its application must not be slower
    // than the CPU explicit application; its assembly tracks the CPU Schur complement.
    assert!(hybrid.apply.total_seconds <= expl_mkl.apply.total_seconds * 1.5);
    assert!(hybrid.preprocessing.cpu_seconds > 0.0);
}
