//! Parallel-vs-sequential conformance suite.
//!
//! The host runtime now really executes the subdomain loops on several threads
//! (`shims/rayon` is a genuine work-stealing pool), and the backends promise that
//! every cross-subdomain reduction happens in deterministic subdomain-index order.
//! This suite pins that promise at the strongest possible level: for heat transfer in
//! 2D and 3D, linear elasticity in 2D, and **all eleven** dual-operator approaches
//! (the nine of Table III plus the sparsity-aware explicit family), the
//! operator action `F·p`, the PCPG solution, and the iteration counts produced with 4
//! worker threads must be **bit-for-bit** identical to a 1-thread run — not merely
//! close in norm.  It also asserts the performance side of the tentpole: on a machine
//! with enough cores, the measured wall-clock `cpu_seconds` of a Fig. 5-size
//! preprocessing phase must actually shrink when threads are added.
//!
//! Thread counts are pinned with `rayon::ThreadPoolBuilder::install`, the same
//! mechanism the `FETI_THREADS` environment variable feeds (CI additionally runs the
//! whole workspace suite under `FETI_THREADS=1` and `FETI_THREADS=4`).

mod common;

use common::problems;
use feti_core::{
    build_dual_operator, build_dual_operator_with_options, DualOperatorApproach, PcpgOptions,
    TimeBreakdown, TotalFetiSolver,
};
use feti_decompose::{DecomposedProblem, DecompositionSpec};
use feti_mesh::{Dim, ElementOrder, Physics};
use feti_solver::{FactorizationKind, SolverOptions, SupernodalFactor, SymbolicCholesky};
use feti_sparse::{blas, DenseMatrix, DiagKind, MemoryOrder, Transpose, Triangle};
use proptest::prelude::*;

/// Runs `f` with every parallel region pinned to `threads` worker threads.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

fn assert_bits_eq(name: &str, approach: DualOperatorApproach, what: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name} {approach:?}: {what} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} {approach:?}: {what}[{i}] differs between 1 and 4 threads ({x:e} vs {y:e})"
        );
    }
}

/// `F·p` of every approach must be bit-for-bit identical with 1 and 4 worker threads.
#[test]
fn operator_action_is_bit_identical_across_thread_counts() {
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.37).sin() + 0.25).collect();
        for approach in DualOperatorApproach::all() {
            let run = |threads: usize| -> Vec<f64> {
                with_threads(threads, || {
                    let mut op = build_dual_operator(approach, &problem, None).unwrap();
                    op.preprocess().unwrap();
                    let mut q = vec![0.0; nl];
                    op.apply(&p, &mut q);
                    q
                })
            };
            let q1 = run(1);
            let q4 = run(4);
            assert_bits_eq(name, approach, "F·p", &q1, &q4);
        }
    }
}

/// The PCPG solution — multipliers, primal solution, and the iteration count — of
/// every approach must be bit-for-bit identical with 1 and 4 worker threads.
#[test]
fn solutions_and_iteration_counts_are_bit_identical_across_thread_counts() {
    for (name, spec) in problems() {
        // One shared handle for the whole sweep: solver construction clones the Arc,
        // not the decomposed problem.
        let problem = std::sync::Arc::new(DecomposedProblem::build(&spec));
        for approach in DualOperatorApproach::all() {
            let run = |threads: usize| {
                with_threads(threads, || {
                    let mut solver = TotalFetiSolver::new(
                        std::sync::Arc::clone(&problem),
                        approach,
                        None,
                        PcpgOptions::default(),
                    )
                    .unwrap();
                    solver.solve().unwrap()
                })
            };
            let s1 = run(1);
            let s4 = run(4);
            assert_eq!(
                s1.iterations, s4.iterations,
                "{name} {approach:?}: iteration counts must match"
            );
            assert_bits_eq(name, approach, "lambda", &s1.lambda, &s4.lambda);
            assert_bits_eq(name, approach, "alpha", &s1.alpha, &s4.alpha);
            assert_bits_eq(
                name,
                approach,
                "global solution",
                &s1.global_solution,
                &s4.global_solution,
            );
            assert_eq!(
                s1.final_residual.to_bits(),
                s4.final_residual.to_bits(),
                "{name} {approach:?}: final residual"
            );
        }
    }
}

/// With the supernodal factorization forced on, the operator action of every approach
/// must still be bit-for-bit identical between 1 and 4 worker threads — the blocked
/// panel kernels inside the factorization are thread-count-invariant by construction.
#[test]
fn supernodal_operator_action_is_bit_identical_across_thread_counts() {
    let options =
        SolverOptions { factorization: FactorizationKind::Supernodal, ..SolverOptions::default() };
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.53).cos() - 0.4).collect();
        for approach in DualOperatorApproach::all() {
            let run = |threads: usize| -> Vec<f64> {
                with_threads(threads, || {
                    let mut op =
                        build_dual_operator_with_options(approach, &problem, None, options)
                            .unwrap();
                    op.preprocess().unwrap();
                    let mut q = vec![0.0; nl];
                    op.apply(&p, &mut q);
                    q
                })
            };
            let q1 = run(1);
            let q4 = run(4);
            assert_bits_eq(name, approach, "supernodal F·p", &q1, &q4);
        }
    }
}

/// The sparsity-aware explicit family in particular: with the assembly parameters
/// pinned to the configuration both explicit families share (SYRK path over a dense
/// forward factor), the `F·p` of `expl sparse legacy/modern` must be bit-for-bit
/// identical between 1 and 4 worker threads on every conformance problem.
#[test]
fn sparse_rhs_assembly_is_bit_identical_across_thread_counts() {
    let params = feti_core::ExplicitAssemblyParams {
        path: feti_core::Path::Syrk,
        forward_factor_storage: feti_core::FactorStorage::Dense,
        ..Default::default()
    };
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.71).sin() - 0.15).collect();
        for approach in [
            DualOperatorApproach::ExplicitSparseGpuLegacy,
            DualOperatorApproach::ExplicitSparseGpuModern,
        ] {
            let run = |threads: usize| -> Vec<f64> {
                with_threads(threads, || {
                    let mut op = build_dual_operator(approach, &problem, Some(params)).unwrap();
                    op.preprocess().unwrap();
                    let mut q = vec![0.0; nl];
                    op.apply(&p, &mut q);
                    q
                })
            };
            assert_bits_eq(name, approach, "sparse-RHS F·p", &run(1), &run(4));
        }
    }
}

/// The blocked BLAS kernels and the supernodal factorization are sequential building
/// blocks: their results must not depend on the ambient worker pool at all.  This
/// pins SYRK, TRSM, SYMM, SYMV and a supernodal factor to identical bits under 1 and
/// 4 installed threads.
#[test]
fn blocked_kernels_and_supernodal_factor_are_thread_count_invariant() {
    let n = 64;
    let fill = |seed: usize, rows: usize, cols: usize, boost: f64| {
        let mut m = DenseMatrix::zeros(rows, cols, MemoryOrder::RowMajor);
        for i in 0..rows {
            for j in 0..cols {
                let v = (((i * 31 + j * 17 + seed) % 101) as f64) * 0.02 - 1.0;
                m.set(i, j, v + if i == j { boost } else { 0.0 });
            }
        }
        m
    };
    let run = |threads: usize| -> Vec<Vec<u64>> {
        with_threads(threads, || {
            let a = fill(1, n, n, 0.0);
            let tri = fill(2, n, n, n as f64);
            let mut c = fill(3, n, n, 0.0);
            blas::syrk(Triangle::Lower, Transpose::No, 1.1, &a, 0.3, &mut c);
            let mut b = fill(4, n, 8, 0.0);
            blas::trsm(Triangle::Lower, Transpose::No, DiagKind::NonUnit, 1.0, &tri, &mut b)
                .unwrap();
            let mut s = fill(5, n, 8, 0.0);
            blas::symm(feti_sparse::Side::Left, Triangle::Upper, 0.7, &a, &b, 0.2, &mut s);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let mut y = vec![0.5; n];
            blas::symv(Triangle::Lower, 1.3, &a, &x, -0.6, &mut y);

            let spec = common::heat_2d();
            let problem = DecomposedProblem::build(&spec);
            let opts = SolverOptions::default();
            let k = &problem.subdomains[0].k_reg;
            let symbolic = SymbolicCholesky::analyze(k, &opts);
            let factor = SupernodalFactor::factorize(&symbolic, k, &opts).unwrap();
            let l = factor.factor_csc();

            let bits = |m: &DenseMatrix| -> Vec<u64> {
                (0..m.nrows())
                    .flat_map(|i| (0..m.ncols()).map(move |j| (i, j)))
                    .map(|(i, j)| m.get(i, j).to_bits())
                    .collect()
            };
            vec![
                bits(&c),
                bits(&b),
                bits(&s),
                y.iter().map(|v| v.to_bits()).collect(),
                l.values().iter().map(|v| v.to_bits()).collect(),
            ]
        })
    };
    let r1 = run(1);
    let r4 = run(4);
    for (what, (a, b)) in
        ["syrk", "trsm", "symm", "symv", "supernodal factor"].iter().zip(r1.iter().zip(&r4))
    {
        assert_eq!(a, b, "{what}: bits differ between 1 and 4 installed threads");
    }
}

/// The tentpole's performance claim: on a machine with at least 4 cores, the measured
/// wall-clock `cpu_seconds` of a Fig. 5-size preprocessing phase (3D heat transfer,
/// quadratic elements — factorization-dominated host work) must speed up by more than
/// 1.5× going from 1 to 4 worker threads.
#[test]
fn preprocessing_wall_time_speeds_up_with_threads() {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} hardware core(s) available");
        return;
    }
    let spec = DecompositionSpec {
        dim: Dim::Three,
        physics: Physics::HeatTransfer,
        order: ElementOrder::Quadratic,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 3,
        subdomains_per_cluster: 8,
    };
    let problem = DecomposedProblem::build(&spec);
    let preprocess_wall = |threads: usize| -> f64 {
        with_threads(threads, || {
            // Best of three runs smooths out allocator and scheduler noise (shared
            // CI runners expose exactly 4 oversubscribed vCPUs).
            (0..3)
                .map(|_| {
                    let mut op =
                        build_dual_operator(DualOperatorApproach::ExplicitCholmod, &problem, None)
                            .unwrap();
                    let t: TimeBreakdown = op.preprocess().unwrap();
                    t.cpu_seconds
                })
                .fold(f64::INFINITY, f64::min)
        })
    };
    let serial = preprocess_wall(1);
    let parallel = preprocess_wall(4);
    let speedup = serial / parallel;
    assert!(
        speedup > 1.5,
        "preprocessing must speed up by more than 1.5x on {cores} cores: \
         1 thread {serial:.3}s vs 4 threads {parallel:.3}s (speedup {speedup:.2}x)"
    );
}

/// Nested `install` on persistent pools: an inner pool entered from inside an outer
/// pool's scope must take over the ambient configuration for its extent and restore
/// the outer one afterwards, and a solve computed under the nesting must be
/// bit-for-bit identical to the same solve on a plain 4-thread pool.
#[test]
fn nested_install_on_persistent_pools_is_bit_identical() {
    let problem =
        std::sync::Arc::new(DecomposedProblem::build(&DecompositionSpec::small_heat_2d()));
    let solve = || {
        let mut solver = TotalFetiSolver::new(
            std::sync::Arc::clone(&problem),
            DualOperatorApproach::ExplicitCholmod,
            None,
            PcpgOptions::default(),
        )
        .unwrap();
        solver.solve().unwrap()
    };
    let plain = with_threads(4, solve);
    let outer = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let inner = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let nested = outer.install(|| {
        assert_eq!(rayon::current_num_threads(), 2, "outer install must be ambient");
        let s = inner.install(|| {
            assert_eq!(rayon::current_num_threads(), 4, "inner install must override");
            solve()
        });
        assert_eq!(rayon::current_num_threads(), 2, "outer configuration must be restored");
        s
    });
    assert_eq!(plain.iterations, nested.iterations, "nested install: iteration counts");
    let approach = DualOperatorApproach::ExplicitCholmod;
    assert_bits_eq("small heat 2D", approach, "nested lambda", &plain.lambda, &nested.lambda);
    assert_bits_eq(
        "small heat 2D",
        approach,
        "nested global solution",
        &plain.global_solution,
        &nested.global_solution,
    );
}

/// The small-region inline cutoff is a scheduling decision, never a numerical one:
/// for **all eleven** approaches, solving with the cutoff disabled (every region goes
/// through the persistent pool) and with the cutoff forced to swallow every
/// unannotated region must produce bit-identical solutions and iteration counts.
/// The subdomain loops themselves are `with_max_len(1)`-annotated and therefore
/// exempt either way — this pins that the annotation sweep missed nothing that
/// matters numerically.
#[test]
fn inline_cutoff_on_and_off_solve_bit_identically() {
    let problem =
        std::sync::Arc::new(DecomposedProblem::build(&DecompositionSpec::small_heat_2d()));
    for approach in DualOperatorApproach::all() {
        let run = |cutoff: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(4)
                .inline_cutoff(cutoff)
                .build()
                .unwrap()
                .install(|| {
                    let mut solver = TotalFetiSolver::new(
                        std::sync::Arc::clone(&problem),
                        approach,
                        None,
                        PcpgOptions::default(),
                    )
                    .unwrap();
                    solver.solve().unwrap()
                })
        };
        let off = run(0);
        let on = run(usize::MAX);
        assert_eq!(off.iterations, on.iterations, "{approach:?}: cutoff iteration counts");
        assert_bits_eq("small heat 2D", approach, "cutoff lambda", &off.lambda, &on.lambda);
        assert_bits_eq(
            "small heat 2D",
            approach,
            "cutoff global solution",
            &off.global_solution,
            &on.global_solution,
        );
        assert_eq!(
            off.final_residual.to_bits(),
            on.final_residual.to_bits(),
            "{approach:?}: cutoff final residual"
        );
    }
}

/// An unannotated fine-grained region below the cutoff runs inline on the calling
/// thread (no pool round-trip), yet produces exactly the bits of the pooled
/// execution of the same region.
#[test]
fn fine_grained_regions_below_the_cutoff_stay_on_the_calling_thread() {
    use rayon::prelude::*;
    let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.29).sin() - 0.3).collect();
    let run = |cutoff: usize| -> (Vec<u64>, Vec<std::thread::ThreadId>) {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .inline_cutoff(cutoff)
            .build()
            .unwrap()
            .install(|| {
                let pairs: Vec<(f64, std::thread::ThreadId)> = v
                    .par_iter()
                    .map(|&x| (x.mul_add(3.0, 1.0).sqrt().abs(), std::thread::current().id()))
                    .collect();
                let bits = pairs.iter().map(|(y, _)| y.to_bits()).collect();
                let mut threads: Vec<_> = pairs.into_iter().map(|(_, id)| id).collect();
                threads.dedup();
                (bits, threads)
            })
    };
    let caller = std::thread::current().id();
    let (inline_bits, inline_threads) = run(usize::MAX);
    let (pooled_bits, _) = run(0);
    assert_eq!(
        inline_threads,
        vec![caller],
        "a region below the cutoff must run entirely on the calling thread"
    );
    assert_eq!(inline_bits, pooled_bits, "inlined and pooled regions must agree bit-for-bit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Batched application equals column-by-column application **exactly** for every
    // approach, over random batch widths and worker-thread counts.
    #[test]
    fn apply_many_equals_columnwise_apply_for_random_widths_and_threads(
        width in 1usize..6,
        threads in 1usize..5,
        approach_index in 0usize..11,
    ) {
        let approach = DualOperatorApproach::all()[approach_index];
        let problem = DecomposedProblem::build(&DecompositionSpec::small_heat_2d());
        let nl = problem.num_lambdas;
        let mut p = feti_sparse::DenseMatrix::zeros(nl, width, feti_sparse::MemoryOrder::ColMajor);
        for j in 0..width {
            for i in 0..nl {
                p.set(i, j, ((i * 7 + j * 13) % 23) as f64 * 0.17 - 1.9);
            }
        }
        with_threads(threads, || {
            let mut op = build_dual_operator(approach, &problem, None).unwrap();
            op.preprocess().unwrap();
            let mut q_many = feti_sparse::DenseMatrix::zeros(
                nl,
                width,
                feti_sparse::MemoryOrder::ColMajor,
            );
            op.apply_many(&p, &mut q_many);
            for j in 0..width {
                let mut q = vec![0.0; nl];
                op.apply(&p.col(j), &mut q);
                for (i, v) in q.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        q_many.get(i, j).to_bits(),
                        "{approach:?} threads={threads} width={width} column {j} row {i}"
                    );
                }
            }
        });
    }
}
