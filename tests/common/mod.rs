//! Canonical conformance problems shared by the cross-approach suite
//! (`tests/conformance.rs`) and the parallel-vs-sequential suite
//! (`tests/parallel_conformance.rs`): heat transfer in 2D and 3D and linear
//! elasticity in 2D.  Keeping the specs in one place guarantees both suites always
//! test the same problems.

use feti_decompose::DecompositionSpec;
use feti_mesh::{Dim, ElementOrder, Physics};

/// The small 2D heat-transfer conformance problem.
pub fn heat_2d() -> DecompositionSpec {
    DecompositionSpec::small_heat_2d()
}

/// The small 3D heat-transfer conformance problem (quadratic elements).
pub fn heat_3d() -> DecompositionSpec {
    DecompositionSpec {
        dim: Dim::Three,
        physics: Physics::HeatTransfer,
        order: ElementOrder::Quadratic,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 2,
        subdomains_per_cluster: 8,
    }
}

/// The small 2D linear-elasticity conformance problem.
pub fn elasticity_2d() -> DecompositionSpec {
    DecompositionSpec {
        dim: Dim::Two,
        physics: Physics::LinearElasticity,
        order: ElementOrder::Linear,
        subdomains_per_side: 2,
        elements_per_subdomain_side: 3,
        subdomains_per_cluster: 4,
    }
}

/// All three conformance problems with their display names.  Not every suite uses
/// every helper; the module is compiled once per test binary.
#[allow(dead_code)]
pub fn problems() -> Vec<(&'static str, DecompositionSpec)> {
    vec![("heat/2D", heat_2d()), ("heat/3D", heat_3d()), ("elasticity/2D", elasticity_2d())]
}
