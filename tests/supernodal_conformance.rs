//! Supernodal-factorization conformance suite.
//!
//! The supernodal (BLAS-3) Cholesky kernel is an internal reorganisation of the same
//! arithmetic as the scalar up-looking kernel, so the contract is bit-for-bit: on the
//! seed conformance problems (heat 2D/3D, elasticity 2D) the supernodal factor, its
//! triangular solves, and every dual-operator approach built on top of it must be
//! bitwise identical to the simplicial path.

mod common;

use common::problems;
use feti_core::{build_dual_operator, build_dual_operator_with_options, DualOperatorApproach};
use feti_decompose::DecomposedProblem;
use feti_solver::{
    CholeskyFactor, FactorizationKind, SolverOptions, SupernodalFactor, SymbolicCholesky,
};

/// Deterministic right-hand side for the direct-solver comparisons.
fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.61).cos() * 0.5 + 0.1).collect()
}

/// The supernodal factor and its triangular solves must match the scalar kernel
/// bit-for-bit on every regularized subdomain stiffness matrix of the seed problems.
#[test]
fn supernodal_factor_matches_scalar_bit_for_bit_on_seed_problems() {
    let options = SolverOptions::default();
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        for sub in &problem.subdomains {
            let symbolic = SymbolicCholesky::analyze(&sub.k_reg, &options);
            let scalar = CholeskyFactor::factorize(&symbolic, &sub.k_reg, &options).unwrap();
            let supernodal = SupernodalFactor::factorize(&symbolic, &sub.k_reg, &options).unwrap();
            assert!(
                supernodal.num_supernodes() <= scalar.dim(),
                "{name}/{}: supernode count bounded by dimension",
                sub.index
            );

            let ls = scalar.factor_csc();
            let lp = supernodal.factor_csc();
            assert_eq!(ls.col_ptr(), lp.col_ptr(), "{name}/{}: factor pattern", sub.index);
            assert_eq!(ls.row_idx(), lp.row_idx(), "{name}/{}: factor rows", sub.index);
            for (k, (a, b)) in ls.values().iter().zip(lp.values()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}/{}: factor value {k}: {a:e} vs {b:e}",
                    sub.index
                );
            }

            let b = rhs(sub.k_reg.nrows());
            let xs = scalar.solve(&b);
            let xp = supernodal.solve(&b);
            for (i, (a, b)) in xs.iter().zip(&xp).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}/{}: solve component {i}: {a:e} vs {b:e}",
                    sub.index
                );
            }
        }
    }
}

/// Every dual-operator approach built with the supernodal factorization forced on must
/// produce a bitwise-identical operator action `F·p` to its default (simplicial)
/// build.  The MKL-facade approaches ignore the kind (the PARDISO-like facade always
/// factorizes simplicially), so for them the check is trivially exact as well.
#[test]
fn every_approach_is_bitwise_unchanged_with_supernodal_forced() {
    let supernodal =
        SolverOptions { factorization: FactorizationKind::Supernodal, ..SolverOptions::default() };
    for (name, spec) in problems() {
        let problem = DecomposedProblem::build(&spec);
        let nl = problem.num_lambdas;
        let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.37).sin() + 0.25).collect();
        for approach in DualOperatorApproach::all() {
            let mut op_default = build_dual_operator(approach, &problem, None).unwrap();
            op_default.preprocess().unwrap();
            let mut q_default = vec![0.0; nl];
            op_default.apply(&p, &mut q_default);

            let mut op_super =
                build_dual_operator_with_options(approach, &problem, None, supernodal).unwrap();
            op_super.preprocess().unwrap();
            let mut q_super = vec![0.0; nl];
            op_super.apply(&p, &mut q_super);

            for (i, (a, b)) in q_default.iter().zip(&q_super).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} {approach:?}: F·p component {i}: {a:e} vs {b:e}"
                );
            }
        }
    }
}
