//! Service stress: ≥4 tenants hammering one service concurrently.  Runs under both
//! `FETI_THREADS=1` and `=4` in CI.  Checks that the tenant-fair queue, the warm
//! cache and the budget ledger survive contention: every job completes, every
//! tenant's solutions stay correct (and identical across that tenant's repeats),
//! and the counters add up.

mod common;

use std::sync::Arc;

use feti_decompose::DecomposedProblem;
use feti_service::{FetiService, JobSpec, ServiceConfig, ServiceError};

const TENANTS: usize = 4;
const JOBS_PER_TENANT: usize = 6;

#[test]
fn four_tenants_submitting_concurrently_all_complete_with_identical_solutions() {
    let service = Arc::new(FetiService::start(ServiceConfig {
        workers: 3,
        queue_capacity: TENANTS * JOBS_PER_TENANT + 8,
        ..ServiceConfig::default()
    }));
    // Two distinct geometries spread across the tenants, so the cache serves
    // multiple keys while tenants share entries for the same geometry.
    let geometries: Vec<Arc<DecomposedProblem>> = vec![
        Arc::new(DecomposedProblem::build(&common::heat_2d())),
        Arc::new(DecomposedProblem::build(&common::elasticity_2d())),
    ];
    let handles: Vec<_> = (0..TENANTS)
        .map(|t| {
            let service = Arc::clone(&service);
            let problem = Arc::clone(&geometries[t % geometries.len()]);
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let tickets: Vec<_> = (0..JOBS_PER_TENANT)
                    .map(|_| {
                        service
                            .submit(JobSpec::new(tenant.clone(), Arc::clone(&problem)))
                            .expect("queue sized for the full stream")
                    })
                    .collect();
                let reports: Vec<_> =
                    tickets.into_iter().map(|t| t.wait().expect("job completes")).collect();
                // Every repeat of this tenant's geometry must give the identical
                // solution, warm or cold.
                let reference = &reports[0].solutions[0].global_solution;
                for r in &reports[1..] {
                    assert_eq!(
                        &r.solutions[0].global_solution, reference,
                        "{tenant}: solutions must not depend on cache state or contention"
                    );
                }
                reports.len()
            })
        })
        .collect();
    let completed: usize = handles.into_iter().map(|h| h.join().expect("tenant thread")).sum();
    assert_eq!(completed, TENANTS * JOBS_PER_TENANT);

    let service = Arc::into_inner(service).expect("all tenant threads joined");
    let stats = service.shutdown().unwrap();
    assert_eq!(stats.jobs_completed, TENANTS * JOBS_PER_TENANT);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.cache_hits + stats.cache_misses, TENANTS * JOBS_PER_TENANT);
    assert!(
        stats.cache_hits >= TENANTS * JOBS_PER_TENANT - 2 * geometries.len() * TENANTS,
        "repeated geometries should mostly hit the cache: {stats:?}"
    );
    // Fairness accounting: every tenant's jobs were all served.
    assert_eq!(stats.per_tenant_jobs.len(), TENANTS);
    for (tenant, jobs) in &stats.per_tenant_jobs {
        assert_eq!(*jobs, JOBS_PER_TENANT, "{tenant} lost jobs");
    }
}

#[test]
fn queue_overflow_is_a_typed_rejection_not_a_panic() {
    // One worker and a tiny queue: burst submissions must be rejected with the
    // typed QueueFull error once the queue is at capacity.
    let service = FetiService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let problem = Arc::new(DecomposedProblem::build(&common::heat_3d()));
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..24 {
        match service.submit(JobSpec::new("burst", Arc::clone(&problem))) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(rejected > 0, "a 24-job burst into a 2-slot queue must overflow");
    for t in tickets {
        t.wait().expect("accepted jobs still complete");
    }
    service.shutdown().unwrap();
}

#[test]
fn shutdown_drains_queued_jobs_before_exiting() {
    let service = FetiService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let problem = Arc::new(DecomposedProblem::build(&common::heat_2d()));
    let tickets: Vec<_> = (0..8)
        .map(|_| service.submit(JobSpec::new("drain", Arc::clone(&problem))).unwrap())
        .collect();
    let stats = service.shutdown().unwrap();
    assert_eq!(stats.jobs_completed, 8, "graceful shutdown must drain the queue");
    for t in tickets {
        t.wait().expect("drained job has a report");
    }
}
