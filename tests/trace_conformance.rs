//! Trace conformance suite: the observability layer must observe, never perturb.
//!
//! Three contracts are pinned here:
//!
//! 1. **Bit identity** — with tracing enabled, every dual-operator approach
//!    produces bit-for-bit the same `F·p` action, the same solution vector, and
//!    the same PCPG iteration count as with tracing disabled.  Tracing records
//!    wall timestamps around the numerics; it must never reorder or reformulate
//!    them.
//! 2. **Exporter round trip** — the Chrome trace-event document produced from a
//!    real solve parses back through the `feti-bench` JSON parser with both the
//!    measured-host and modelled-device process lanes intact.
//! 3. **Concurrent spans** — nested spans opened concurrently from the persistent
//!    worker pool (4 threads, nested parallel regions) land on per-thread stacks:
//!    no events are lost or dropped, every span carries its worker's label, and
//!    nesting depths are consistent.
//!
//! The trace enable flag is process-global, so every test here serializes on one
//! gate mutex and restores the disabled state (draining the buffers) on exit —
//! including on assertion panics — so the rest of the test binary never observes
//! tracing mid-toggle.

mod common;

use common::problems;
use feti_bench::json::{parse, Value};
use feti_core::{build_dual_operator, DualOperatorApproach, PcpgOptions, TotalFetiSolver};
use feti_decompose::DecomposedProblem;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serializes every trace-toggling test and guarantees the flag ends up disabled
/// (with the buffers drained) no matter how the test exits.
struct TraceGate(#[allow(dead_code)] MutexGuard<'static, ()>);

fn trace_gate() -> TraceGate {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        // A previous test panicked while holding the gate; the RAII drop below
        // already restored the disabled state, so the poison carries no meaning.
        Err(poisoned) => poisoned.into_inner(),
    };
    feti_trace::set_enabled(false);
    let _ = feti_trace::take_report();
    TraceGate(guard)
}

impl Drop for TraceGate {
    fn drop(&mut self) {
        feti_trace::set_enabled(false);
        let _ = feti_trace::take_report();
    }
}

/// One `F·p` action and one full PCPG solve of one approach, as raw bits.
fn run_approach(
    problem: &Arc<DecomposedProblem>,
    approach: DualOperatorApproach,
) -> (Vec<u64>, Vec<u64>, usize) {
    let nl = problem.num_lambdas;
    let p: Vec<f64> = (0..nl).map(|i| (i as f64 * 0.37).sin() + 0.25).collect();
    let mut op = build_dual_operator(approach, problem, None).unwrap();
    op.preprocess().unwrap();
    let mut q = vec![0.0; nl];
    op.apply(&p, &mut q);
    let mut solver =
        TotalFetiSolver::new(Arc::clone(problem), approach, None, PcpgOptions::default()).unwrap();
    let sol = solver.solve().unwrap();
    (
        q.iter().map(|v| v.to_bits()).collect(),
        sol.global_solution.iter().map(|v| v.to_bits()).collect(),
        sol.iterations,
    )
}

/// Contract 1: tracing on vs off is bit-identical for every approach on every
/// conformance problem — same `F·p` bits, same solution bits, same iteration count.
#[test]
fn tracing_is_bit_identical_across_all_approaches() {
    let _gate = trace_gate();
    for (name, spec) in problems() {
        let problem = Arc::new(DecomposedProblem::build(&spec));
        for approach in DualOperatorApproach::all() {
            feti_trace::set_enabled(false);
            let off = run_approach(&problem, approach);
            feti_trace::set_enabled(true);
            let on = run_approach(&problem, approach);
            let report = feti_trace::take_report();
            feti_trace::set_enabled(false);
            assert_eq!(off.0, on.0, "{name} {approach:?}: F·p bits differ under tracing");
            assert_eq!(off.1, on.1, "{name} {approach:?}: solution bits differ under tracing");
            assert_eq!(off.2, on.2, "{name} {approach:?}: iteration count differs under tracing");
            // Sanity: the traced run really was traced.
            assert!(
                report.spans.iter().any(|s| s.name == "preprocess"),
                "{name} {approach:?}: traced run recorded no preprocess span"
            );
            assert!(
                report.spans.iter().any(|s| s.name.starts_with("pcpg_iter[")),
                "{name} {approach:?}: traced run recorded no PCPG iteration spans"
            );
        }
    }
}

/// Contract 2: a Chrome trace exported from a real traced solve round-trips
/// through the JSON parser with both process lanes and the plan records intact.
#[test]
fn chrome_export_of_a_real_solve_round_trips() {
    let _gate = trace_gate();
    feti_trace::set_enabled(true);
    let spec = common::heat_3d();
    let problem = Arc::new(DecomposedProblem::build(&spec));
    let plan = feti_core::planner::Planner::new(&problem, feti_gpu::GpuSpec::a100_40gb()).plan(100);
    let mut solver =
        TotalFetiSolver::from_plan(Arc::clone(&problem), &plan, PcpgOptions::default()).unwrap();
    solver.solve().unwrap();
    // A GPU approach guarantees modelled device ops in the report even if the
    // planner picked a CPU family above.
    let mut gpu_op =
        build_dual_operator(DualOperatorApproach::ExplicitGpuLegacy, &problem, None).unwrap();
    gpu_op.preprocess().unwrap();
    let p: Vec<f64> = (0..problem.num_lambdas).map(|i| 0.5 - (i % 3) as f64 * 0.25).collect();
    let mut q = vec![0.0; problem.num_lambdas];
    gpu_op.apply(&p, &mut q);

    let report = feti_trace::take_report();
    feti_trace::set_enabled(false);
    assert!(!report.spans.is_empty(), "a traced solve must record spans");
    assert!(!report.device_ops.is_empty(), "a traced GPU preprocess must record device ops");
    assert!(!report.plans.is_empty(), "a traced plan() must record its ranking");

    let doc = feti_bench::chrome::chrome_trace(&report);
    let back = parse(&doc.to_json()).expect("exported Chrome trace must be valid JSON");
    let events = match back.get("traceEvents") {
        Some(Value::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let pids: std::collections::BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("pid").and_then(Value::as_num))
        .map(|p| p as i64)
        .collect();
    assert!(
        pids.contains(&(feti_bench::chrome::HOST_PID as i64)),
        "measured host lane missing from the export"
    );
    assert!(
        pids.contains(&(feti_bench::chrome::DEVICE_PID as i64)),
        "modelled device lane missing from the export"
    );
    let plans = match back.get("plans") {
        Some(Value::Arr(plans)) => plans,
        other => panic!("plans must be an array, got {other:?}"),
    };
    assert_eq!(plans.len(), report.plans.len());
    let first = &plans[0];
    assert!(
        matches!(first.get("candidates"), Some(Value::Arr(c)) if !c.is_empty()),
        "exported plan must carry its ranked candidates"
    );
}

/// Contract 3: concurrent nested spans from the persistent pool (4 workers,
/// nested parallel regions) are complete and consistent — nothing dropped, every
/// span labelled with its thread, inner spans one level deeper than their outer.
#[test]
fn concurrent_nested_spans_under_the_persistent_pool_are_complete() {
    const OUTER: usize = 16;
    const INNER: usize = 8;
    const ROUNDS: usize = 25;

    let _gate = trace_gate();
    feti_trace::set_enabled(true);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .inline_cutoff(0) // tiny regions must still hit the pool machinery
        .build()
        .expect("pool construction");
    pool.install(|| {
        use rayon::prelude::*;
        let outer_ids: Vec<usize> = (0..OUTER).collect();
        for _ in 0..ROUNDS {
            let per_outer: Vec<usize> = outer_ids
                .par_iter()
                .map(|&i| {
                    let _outer = feti_trace::span(|| format!("outer[{i}]"));
                    let inner_ids: Vec<usize> = (0..INNER).collect();
                    // A nested region: its items may run on other workers or be
                    // self-drained by this one.
                    let inner: Vec<usize> = inner_ids
                        .par_iter()
                        .map(|&j| {
                            let _inner = feti_trace::span(|| format!("inner[{i}.{j}]"));
                            i + j
                        })
                        .collect();
                    inner.into_iter().sum()
                })
                .collect();
            assert_eq!(
                per_outer.into_iter().sum::<usize>(),
                (0..OUTER).map(|i| INNER * i + INNER * (INNER - 1) / 2).sum::<usize>()
            );
        }
    });
    let report = feti_trace::take_report();
    feti_trace::set_enabled(false);

    assert_eq!(report.dropped_events, 0, "the stress run must not overflow the buffers");
    let outer_spans = report.spans.iter().filter(|s| s.name.starts_with("outer[")).count();
    let inner_spans = report.spans.iter().filter(|s| s.name.starts_with("inner[")).count();
    assert_eq!(outer_spans, OUTER * ROUNDS, "every outer span must be recorded exactly once");
    assert_eq!(inner_spans, OUTER * INNER * ROUNDS, "every inner span must be recorded");
    for span in &report.spans {
        assert!(!span.thread.is_empty(), "span {:?} lost its thread label", span.name);
        assert!(span.dur_us >= 0.0, "span {:?} has negative duration", span.name);
    }
    // Nesting must be observed: a worker that submits a nested region self-drains
    // its own deque, so at least some inner items run while their outer span is
    // live on the same thread and record a deeper stack level.  (An inner item
    // stolen by an idle worker legitimately starts a fresh stack at depth 0, so
    // only the existence of nested depths is pinned, not their count.)
    assert!(
        report.spans.iter().any(|s| s.name.starts_with("inner[") && s.depth >= 1),
        "no inner span ever recorded a nested depth"
    );
    // Outer spans always open from the region closure directly, never under
    // another span of this test on the same thread unless the pool interleaves
    // work while an application waits — both are valid stacks, but an outer span
    // can never be deeper than the total live spans this test creates.
    let max_depth = report.spans.iter().map(|s| s.depth).max().unwrap_or(0);
    assert!(
        max_depth < OUTER,
        "span stack depth {max_depth} exceeds anything this test can legally nest"
    );
}
