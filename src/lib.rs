//! Umbrella crate for the reproduction of *Assembly of FETI dual operator using
//! CUDA* (Homola, Říha, Brzobohatý; IPPS 2025).
//!
//! The implementation lives in ten layered crates under `crates/`; this crate
//! re-exports each layer under a short name so the end-to-end examples and tests at
//! the repository root have a single dependency, and so downstream users can depend
//! on `feti` alone.  See `README.md` for the workspace layout and `DESIGN.md` for
//! the architecture, the CPU-simulated-GPU substitution rule and the timing
//! semantics.

#![warn(missing_docs)]

pub use feti_bench as bench;
pub use feti_core as core;
pub use feti_decompose as decompose;
pub use feti_gpu as gpu;
pub use feti_mesh as mesh;
pub use feti_order as order;
pub use feti_service as service;
pub use feti_solver as solver;
pub use feti_sparse as sparse;
pub use feti_trace as trace;
